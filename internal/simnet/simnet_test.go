package simnet

import (
	"testing"
	"time"
)

func TestEngineRunsInTimestampOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	if n := e.Run(time.Second); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != time.Second {
		t.Fatalf("Now = %v, want advance to until", e.Now())
	}
}

func TestEngineFIFOForEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEngineStopsAtUntil(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(2*time.Second, func() { ran = true })
	e.Run(time.Second)
	if ran {
		t.Fatal("event past until executed")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run(3 * time.Second)
	if !ran {
		t.Fatal("event not executed on second Run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []time.Duration
	e.At(10*time.Millisecond, func() {
		hits = append(hits, e.Now())
		e.After(5*time.Millisecond, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run(time.Second)
	if len(hits) != 2 || hits[0] != 10*time.Millisecond || hits[1] != 15*time.Millisecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastEventsRunNow(t *testing.T) {
	e := NewEngine(1)
	e.At(50*time.Millisecond, func() {
		e.At(10*time.Millisecond, func() { // in the past
			if e.Now() != 50*time.Millisecond {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run(time.Second)
}

func newTestNet(t *testing.T, lat LatencyModel, loss float64) *Network {
	t.Helper()
	n, err := New(Config{Latency: lat, LossRate: loss, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkDeliversWithLatency(t *testing.T) {
	n := newTestNet(t, ConstantLatency(30*time.Millisecond), 0)
	var gotAt time.Duration
	var gotFrom, gotSize int
	a := n.AddNode(nil, 0, 0) // infinite bandwidth
	b := n.AddNode(func(from, size int, payload any) {
		gotAt = n.Now()
		gotFrom = from
		gotSize = size
		if payload.(string) != "hello" {
			t.Errorf("payload = %v", payload)
		}
	}, 0, 0)
	n.Send(a, b, 100, "hello")
	n.Run(time.Second)
	if gotAt != 30*time.Millisecond {
		t.Fatalf("delivered at %v, want 30ms", gotAt)
	}
	if gotFrom != a || gotSize != 100 {
		t.Fatalf("from=%d size=%d", gotFrom, gotSize)
	}
	_ = b
}

func TestNetworkBandwidthSerialization(t *testing.T) {
	// 1 Mbps uplink, two 12,500-byte messages = 100 ms transmission each.
	// The second message must queue behind the first.
	n := newTestNet(t, ConstantLatency(0), 0)
	var arrivals []time.Duration
	a := n.AddNode(nil, 1_000_000, 0)
	b := n.AddNode(func(from, size int, payload any) {
		arrivals = append(arrivals, n.Now())
	}, 0, 0)
	n.Send(a, b, 12500, nil)
	n.Send(a, b, 12500, nil)
	n.Run(time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	if arrivals[0] != 100*time.Millisecond || arrivals[1] != 200*time.Millisecond {
		t.Fatalf("arrivals = %v, want [100ms 200ms]", arrivals)
	}
}

func TestNetworkDownlinkSerialization(t *testing.T) {
	// Two senders with infinite uplink hit one 1 Mbps downlink.
	n := newTestNet(t, ConstantLatency(0), 0)
	var arrivals []time.Duration
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(nil, 0, 0)
	c := n.AddNode(func(from, size int, payload any) {
		arrivals = append(arrivals, n.Now())
	}, 0, 1_000_000)
	n.Send(a, c, 12500, nil)
	n.Send(b, c, 12500, nil)
	n.Run(time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	if arrivals[0] != 100*time.Millisecond || arrivals[1] != 200*time.Millisecond {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestNetworkLossRate(t *testing.T) {
	n := newTestNet(t, ConstantLatency(time.Millisecond), 0.3)
	received := 0
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(func(from, size int, payload any) { received++ }, 0, 0)
	const total = 5000
	for i := 0; i < total; i++ {
		n.Send(a, b, 10, nil)
	}
	n.Run(time.Minute)
	lossRate := 1 - float64(received)/total
	if lossRate < 0.25 || lossRate > 0.35 {
		t.Fatalf("observed loss %v, want ~0.3", lossRate)
	}
	if n.Dropped() != total-received {
		t.Fatalf("Dropped = %d, want %d", n.Dropped(), total-received)
	}
	if got := n.Stats(a).MsgsLost; got != total-received {
		t.Fatalf("sender MsgsLost = %d", got)
	}
}

func TestNetworkStats(t *testing.T) {
	n := newTestNet(t, ConstantLatency(time.Millisecond), 0)
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(func(from, size int, payload any) {}, 0, 0)
	n.Send(a, b, 100, nil)
	n.Send(a, b, 200, nil)
	n.Run(time.Second)
	sa, sb := n.Stats(a), n.Stats(b)
	if sa.MsgsSent != 2 || sa.BytesSent != 300 {
		t.Fatalf("sender stats = %+v", sa)
	}
	if sb.MsgsRecv != 2 || sb.BytesRecv != 300 {
		t.Fatalf("receiver stats = %+v", sb)
	}
	if sb.TotalBytes() != 300 || sb.TotalMsgs() != 2 {
		t.Fatal("totals wrong")
	}
	n.ResetStats()
	if n.Stats(a).MsgsSent != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestNetworkDeadNode(t *testing.T) {
	n := newTestNet(t, ConstantLatency(time.Millisecond), 0)
	delivered := false
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(func(from, size int, payload any) { delivered = true }, 0, 0)
	if err := n.SetDead(b, true); err != nil {
		t.Fatal(err)
	}
	if !n.IsDead(b) {
		t.Fatal("IsDead = false")
	}
	n.Send(a, b, 10, nil)
	n.Run(time.Second)
	if delivered {
		t.Fatal("dead node's handler invoked")
	}
	// Dead nodes also cannot send.
	n.Send(b, a, 10, nil)
	n.Run(2 * time.Second)
	if n.Stats(b).MsgsSent != 0 {
		t.Fatal("dead node sent a message")
	}
	if err := n.SetDead(99, true); err == nil {
		t.Fatal("SetDead on unknown node should error")
	}
}

func TestNetworkInvalidSendIgnored(t *testing.T) {
	n := newTestNet(t, ConstantLatency(0), 0)
	a := n.AddNode(nil, 0, 0)
	n.Send(a, 99, 10, nil) // unknown destination: no panic
	n.Send(-1, a, 10, nil)
	n.Run(time.Second)
}

func TestNetworkConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil latency accepted")
	}
	if _, err := New(Config{Latency: ConstantLatency(0), LossRate: 1.5}); err == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
}

func TestNetworkMinDelay(t *testing.T) {
	n, err := New(Config{Latency: ConstantLatency(0), Seed: 1, MinDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(func(from, size int, payload any) { at = n.Now() }, 0, 0)
	n.Send(a, b, 10, nil)
	n.Run(time.Second)
	if at != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want MinDelay", at)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() []time.Duration {
		n, err := New(Config{Latency: ConstantLatency(2 * time.Millisecond), LossRate: 0.1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var arrivals []time.Duration
		a := n.AddNode(nil, 1_000_000, 0)
		b := n.AddNode(func(from, size int, payload any) { arrivals = append(arrivals, n.Now()) }, 0, 1_000_000)
		for i := 0; i < 100; i++ {
			n.Send(a, b, 100+i, nil)
		}
		n.Run(time.Minute)
		return arrivals
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestSetHandler(t *testing.T) {
	n := newTestNet(t, ConstantLatency(0), 0)
	a := n.AddNode(nil, 0, 0)
	hit := false
	if err := n.SetHandler(a, func(from, size int, payload any) { hit = true }); err != nil {
		t.Fatal(err)
	}
	b := n.AddNode(nil, 0, 0)
	n.Send(b, a, 1, nil)
	n.Run(time.Second)
	if !hit {
		t.Fatal("replaced handler not invoked")
	}
	if err := n.SetHandler(42, nil); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestTransferTime(t *testing.T) {
	if transferTime(12500, 1_000_000) != 100*time.Millisecond {
		t.Fatal("transferTime math wrong")
	}
	if transferTime(1000, 0) != 0 {
		t.Fatal("infinite bandwidth should be instantaneous")
	}
}

func BenchmarkNetworkSendDeliver(b *testing.B) {
	n, err := New(Config{Latency: ConstantLatency(time.Millisecond), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	a := n.AddNode(nil, 0, 0)
	c := n.AddNode(func(from, size int, payload any) {}, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(a, c, 100, nil)
		if i%1000 == 999 {
			n.Run(n.Now() + time.Second)
		}
	}
	n.Run(n.Now() + time.Hour)
}

func TestNetworkJitter(t *testing.T) {
	n, err := New(Config{
		Latency: ConstantLatency(10 * time.Millisecond),
		Seed:    5,
		Jitter:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(func(from, size int, payload any) {
		arrivals = append(arrivals, n.Now())
	}, 0, 0)
	base := n.Now()
	for i := 0; i < 200; i++ {
		n.Send(a, b, 10, nil)
	}
	n.Run(base + time.Second)
	if len(arrivals) != 200 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	varies := false
	for _, at := range arrivals {
		d := at - base
		if d < 10*time.Millisecond || d >= 30*time.Millisecond {
			t.Fatalf("arrival delay %v outside [10ms, 30ms)", d)
		}
		if d != arrivals[0]-base {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter produced identical delays")
	}
}

package simnet

import (
	"testing"
	"time"
)

func TestNetworkSetLossRate(t *testing.T) {
	n := newTestNet(t, ConstantLatency(time.Millisecond), 0.03)
	if got := n.LossRate(); got != 0.03 {
		t.Fatalf("LossRate = %v, want configured 0.03", got)
	}
	received := 0
	a := n.AddNode(nil, 0, 0)
	b := n.AddNode(func(from, size int, payload any) { received++ }, 0, 0)

	// Raise to near-certain loss: (almost) nothing gets through.
	n.SetLossRate(0.999999)
	for i := 0; i < 200; i++ {
		n.Send(a, b, 10, nil)
	}
	n.Run(time.Second)
	if received > 2 {
		t.Fatalf("%d messages survived a 0.999999 loss rate", received)
	}

	// Restore the baseline: traffic flows again.
	n.SetLossRate(0.03)
	if got := n.LossRate(); got != 0.03 {
		t.Fatalf("LossRate after restore = %v", got)
	}
	received = 0
	for i := 0; i < 200; i++ {
		n.Send(a, b, 10, nil)
	}
	n.Run(2 * time.Second)
	if received < 150 {
		t.Fatalf("only %d/200 delivered at the restored 3%% rate", received)
	}

	// Out-of-range rates clamp instead of panicking or disabling loss.
	n.SetLossRate(1.5)
	if got := n.LossRate(); got >= 1 {
		t.Fatalf("SetLossRate(1.5) left rate %v >= 1", got)
	}
	n.SetLossRate(-0.5)
	if got := n.LossRate(); got != 0 {
		t.Fatalf("SetLossRate(-0.5) left rate %v, want 0", got)
	}
}

func TestNetworkLinkFilterPartition(t *testing.T) {
	n := newTestNet(t, ConstantLatency(time.Millisecond), 0)
	recv := make([]int, 3)
	mk := func(i int) Handler {
		return func(from, size int, payload any) { recv[i]++ }
	}
	a := n.AddNode(mk(0), 0, 0)
	b := n.AddNode(mk(1), 0, 0)
	c := n.AddNode(mk(2), 0, 0)

	// Isolate c: messages crossing the {a,b} | {c} cut die, including
	// the reliable path — no transport crosses a partition.
	isolated := map[int]bool{c: true}
	n.SetLinkFilter(func(from, to int) bool { return isolated[from] != isolated[to] })
	droppedBefore := n.Dropped()
	n.Send(a, b, 10, nil)
	n.Send(a, c, 10, nil)
	n.SendReliable(b, c, 10, nil)
	n.Send(c, a, 10, nil)
	n.Run(time.Second)
	if recv[1] != 1 {
		t.Fatalf("intra-partition message not delivered: recv=%v", recv)
	}
	if recv[2] != 0 || recv[0] != 0 {
		t.Fatalf("messages crossed the partition: recv=%v", recv)
	}
	if got := n.Dropped() - droppedBefore; got != 3 {
		t.Fatalf("Dropped grew by %d, want 3 filtered messages", got)
	}
	if got := n.Stats(a).MsgsLost; got != 1 {
		t.Fatalf("sender a MsgsLost = %d, want 1", got)
	}

	// Heal: clearing the filter (or emptying the set) restores traffic.
	n.SetLinkFilter(nil)
	n.Send(a, c, 10, nil)
	n.Run(2 * time.Second)
	if recv[2] != 1 {
		t.Fatalf("message dropped after partition healed: recv=%v", recv)
	}
}

package swarm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pandas/internal/wire"
)

// Control-channel tuning. UDP gives no delivery guarantee, so every
// request is retried until its nonce-matched reply (WorkerConfig for
// Hello, Ack for Report) arrives.
const (
	ctrlRetry   = 250 * time.Millisecond
	ctrlRetries = 40 // 10 s worst case per request
)

var errControlTimeout = errors.New("swarm: control request timed out")

// controlClient is the worker's half of the supervisor control channel:
// one UDP socket dedicated to Hello/Config, Start/Ack, and Report/Ack
// traffic, separate from the data-plane socket so protocol load cannot
// starve control messages.
type controlClient struct {
	conn    *net.UDPConn
	sup     *net.UDPAddr
	onStart func(slot uint64)
	// onConfig, when set, observes EVERY WorkerConfig (heartbeat replies
	// included), independent of nonce matching — the worker uses it to
	// keep merging bootstrap entries after registration.
	onConfig func(*wire.WorkerConfig)

	nonce atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan wire.Message
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// newControlClient binds a control socket and starts its read loop.
// onStart is invoked (from the read loop) for each Start command; the
// client acks Starts itself, so onStart must tolerate duplicates.
// onConfig (optional) observes every WorkerConfig.
func newControlClient(supervisor string, onStart func(slot uint64), onConfig func(*wire.WorkerConfig)) (*controlClient, error) {
	sup, err := net.ResolveUDPAddr("udp", supervisor)
	if err != nil {
		return nil, fmt.Errorf("swarm: resolve supervisor %q: %w", supervisor, err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("swarm: bind control socket: %w", err)
	}
	c := &controlClient{
		conn:     conn,
		sup:      sup,
		onStart:  onStart,
		onConfig: onConfig,
		pending:  make(map[uint64]chan wire.Message),
		done:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *controlClient) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				continue
			}
		}
		msg, err := wire.Decode(buf[:n], 0)
		if err != nil {
			continue
		}
		switch m := msg.(type) {
		case *wire.WorkerConfig:
			if c.onConfig != nil {
				c.onConfig(m)
			}
			c.deliver(m.Nonce, m)
		case *wire.Ack:
			c.deliver(m.Nonce, m)
		case *wire.Start:
			// Ack immediately (the supervisor retries Starts until acked),
			// then hand off; onStart deduplicates by slot.
			c.send(&wire.Ack{Nonce: m.Nonce})
			if c.onStart != nil {
				c.onStart(m.Slot)
			}
		}
	}
}

func (c *controlClient) deliver(nonce uint64, m wire.Message) {
	c.mu.Lock()
	ch := c.pending[nonce]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- m:
		default:
		}
	}
}

func (c *controlClient) send(m wire.Message) {
	data, err := wire.Encode(m, 0)
	if err != nil {
		return
	}
	_, _ = c.conn.WriteToUDP(data, c.sup)
}

// request sends m (which must carry nonce) until a reply with the same
// nonce arrives, retrying every ctrlRetry up to ctrlRetries times.
func (c *controlClient) request(m wire.Message, nonce uint64) (wire.Message, error) {
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errControlTimeout
	}
	c.pending[nonce] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, nonce)
		c.mu.Unlock()
	}()
	for i := 0; i < ctrlRetries; i++ {
		c.send(m)
		select {
		case reply := <-ch:
			return reply, nil
		case <-time.After(ctrlRetry):
		case <-c.done:
			return nil, errControlTimeout
		}
	}
	return nil, errControlTimeout
}

// hello registers with the supervisor and blocks for the WorkerConfig
// reply.
func (c *controlClient) hello(h *wire.Hello) (*wire.WorkerConfig, error) {
	h.Nonce = c.nonce.Add(1)
	reply, err := c.request(h, h.Nonce)
	if err != nil {
		return nil, err
	}
	cfg, ok := reply.(*wire.WorkerConfig)
	if !ok {
		return nil, fmt.Errorf("swarm: hello reply is %T", reply)
	}
	return cfg, nil
}

// heartbeat sends a fire-and-forget Hello (no reply wait); the
// supervisor treats any Hello as liveness.
func (c *controlClient) heartbeat(h *wire.Hello) {
	h.Nonce = c.nonce.Add(1)
	c.send(h)
}

// report delivers a slot report and blocks until the supervisor acks it.
func (c *controlClient) report(r *wire.Report) error {
	r.Nonce = c.nonce.Add(1)
	reply, err := c.request(r, r.Nonce)
	if err != nil {
		return err
	}
	if _, ok := reply.(*wire.Ack); !ok {
		return fmt.Errorf("swarm: report reply is %T", reply)
	}
	return nil
}

// Close shuts the control socket down.
func (c *controlClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

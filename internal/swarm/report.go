package swarm

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"pandas/internal/core"
	"pandas/internal/obsv"
)

// SlotResult is one slot's harvested outcome, in the simnet's schema:
// Outcomes[i] is node i exactly as core.Cluster would report it, so
// swarm numbers drop into the same EXPERIMENTS.md tables.
type SlotResult struct {
	Slot         uint64
	Outcomes     []core.NodeOutcome
	Reports      int // nodes that reported (dead workers leave gaps)
	BuilderCells int
	BuilderBytes int64
	Restarts     int // worker restarts during this slot
	Rejoined     int // restarted workers that re-acked the Start mid-slot
}

// DeadlineMet counts eligible nodes that finished sampling within d.
// Eligible excludes nodes that were dead the whole slot and mid-slot
// rejoiners (measured as catch-up, matching the simnet's EligibleAt
// convention).
func (sr SlotResult) DeadlineMet(d time.Duration) (met, eligible int) {
	for _, oc := range sr.Outcomes {
		if oc.Dead || oc.JoinedAt >= 0 {
			continue
		}
		eligible++
		if oc.Sampling >= 0 && oc.Sampling <= d {
			met++
		}
	}
	return met, eligible
}

// Result is a full swarm run.
type Result struct {
	N            int
	Slots        int
	Seed         int64
	Geometry     Geometry
	KillFraction float64

	SlotResults   []SlotResult
	TotalRestarts int

	// Metrics is the merge of every worker's scraped Prometheus
	// endpoint (empty unless Options.ScrapeMetrics).
	Metrics obsv.Snapshot
}

// Render formats the run as the text table the pandas-swarm CLI prints.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "swarm: %d nodes + builder, %d slots, seed %d", r.N, r.Slots, r.Seed)
	if r.KillFraction > 0 {
		fmt.Fprintf(&b, ", kill %.0f%%/slot", r.KillFraction*100)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "%-5s %-9s %-10s %-10s %-10s %-9s %-9s %-9s\n",
		"slot", "reports", "deadline", "p50-sample", "p99-sample", "fetchmsgs", "restarts", "rejoined")
	for _, sr := range r.SlotResults {
		met, eligible := sr.DeadlineMet(r.Geometry.Deadline)
		rate := "n/a"
		if eligible > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(met)/float64(eligible))
		}
		var samples []time.Duration
		fetch := 0
		for _, oc := range sr.Outcomes {
			if oc.Sampling >= 0 {
				samples = append(samples, oc.Sampling)
			}
			fetch += oc.FetchMsgs
		}
		fmt.Fprintf(&b, "%-5d %-9s %-10s %-10s %-10s %-9d %-9d %-9d\n",
			sr.Slot,
			fmt.Sprintf("%d/%d", sr.Reports, r.N),
			rate,
			fmtDur(percentile(samples, 0.50)),
			fmtDur(percentile(samples, 0.99)),
			fetch,
			sr.Restarts,
			sr.Rejoined)
	}
	fmt.Fprintf(&b, "total restarts: %d\n", r.TotalRestarts)
	if len(r.Metrics.Counters) > 0 {
		fmt.Fprintf(&b, "merged worker metrics: %d slots completed, %d incomplete, %d restarts recorded\n",
			r.Metrics.Counters["node_slots_completed_total"],
			r.Metrics.Counters["node_slots_incomplete_total"],
			r.Metrics.Counters["worker_restarts_total"])
	}
	return b.String()
}

// percentile returns the p-quantile of ds (-1 when empty).
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return -1
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(p * float64(len(sorted)-1)))
	return sorted[i]
}

func fmtDur(d time.Duration) string {
	if d < 0 {
		return "n/a"
	}
	return d.Round(time.Millisecond).String()
}

package swarm

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"pandas/internal/core"
	"pandas/internal/obsv"
	"pandas/internal/transport"
	"pandas/internal/wire"
)

// WorkerOptions configures one swarm worker process.
type WorkerOptions struct {
	Supervisor string    // supervisor control address (host:port)
	Index      int       // this worker's index; N (the highest) is the builder
	Restarts   int       // how many times this index has been restarted (from EnvRestarts)
	Log        io.Writer // diagnostics; nil discards
	Stdout     io.Writer // readiness line; nil = os.Stdout
}

// RestartsFromEnv reads the supervisor-provided restart count.
func RestartsFromEnv() int {
	n, err := strconv.Atoi(os.Getenv(EnvRestarts))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// worker is the running state of one swarm participant.
type worker struct {
	o    WorkerOptions
	log  io.Writer
	ctrl *controlClient
	ep   *transport.UDP
	disc *discovery

	node    *core.Node
	builder *core.Builder
	reg     *obsv.Registry

	total       int // nodes + builder
	deadline    time.Duration
	metricsAddr string

	curSlot atomic.Uint64 // latest slot started (0 = none)
	ready   atomic.Bool
	epUp    atomic.Bool

	starts chan uint64
	stop   chan struct{}
}

// RunWorker is the entry point for a pandas-node process launched in
// swarm mode (-swarm ADDR -index I). It registers with the supervisor,
// receives its geometry and bootstrap peers, crawls the rest of the
// swarm over UDP, reports ready, then executes Start commands until
// told to drain (SIGTERM/SIGINT) or the supervisor disappears.
func RunWorker(o WorkerOptions) error {
	w := &worker{
		o:      o,
		log:    o.Log,
		starts: make(chan uint64, 64),
		stop:   make(chan struct{}),
	}
	if w.log == nil {
		w.log = io.Discard
	}
	stdout := o.Stdout
	if stdout == nil {
		stdout = os.Stdout
	}

	ctrl, err := newControlClient(o.Supervisor, w.onStart, w.onConfig)
	if err != nil {
		return err
	}
	defer ctrl.Close()
	w.ctrl = ctrl

	// Bind the data socket before the first Hello: the supervisor needs
	// its address to hand out as a bootstrap entry. The codec cell size
	// is fixed later, when the geometry arrives.
	ep, err := transport.NewUDP(o.Index, "127.0.0.1:0", 0)
	if err != nil {
		return err
	}
	defer ep.Close()
	w.ep = ep

	// Per-worker metrics endpoint, scraped by the supervisor at harvest.
	w.reg = obsv.NewRegistry()
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer mln.Close()
	w.metricsAddr = mln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = w.reg.Snapshot().WritePrometheus(rw)
	})
	go func() { _ = http.Serve(mln, mux) }()
	w.reg.Counter("worker_restarts_total").Add(int64(o.Restarts))

	// Register: Hello carries our socket addresses, the WorkerConfig
	// reply carries geometry, deployment shape, and bootstrap peers.
	cfgMsg, err := ctrl.hello(w.helloMsg())
	if err != nil {
		return fmt.Errorf("swarm: worker %d: registration: %w", o.Index, err)
	}
	if err := w.init(cfgMsg); err != nil {
		return err
	}

	// Heartbeats double as liveness and bootstrap refresh (every reply
	// is a fresh WorkerConfig whose entries onConfig merges).
	go w.heartbeatLoop()
	// Discovery: crawl until the table is complete, announce once more
	// so everyone holds our first-hand binding, then report ready.
	go w.discoveryLoop(stdout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	var lastSlot uint64
	for {
		select {
		case sig := <-sigc:
			// Graceful drain: stop loops, close sockets, flush a final
			// metrics snapshot to the log, exit cleanly.
			fmt.Fprintf(w.log, "worker %d: draining on %v\n", o.Index, sig)
			close(w.stop)
			_ = w.reg.Snapshot().WritePrometheus(w.log)
			return nil
		case s := <-w.starts:
			if s <= lastSlot {
				continue // duplicate Start (control-plane retry)
			}
			lastSlot = s
			w.runSlot(s)
		}
	}
}

// onStart runs on the control read loop: queue the slot for the main
// loop (duplicates are filtered there).
func (w *worker) onStart(slot uint64) {
	select {
	case w.starts <- slot:
	default:
	}
}

// onConfig runs on the control read loop for every WorkerConfig,
// including heartbeat replies: merge any bootstrap entries we lack. The
// supervisor's bindings come from the workers' own Hellos, so they are
// authoritative and may rebind.
func (w *worker) onConfig(m *wire.WorkerConfig) {
	if !w.epUp.Load() {
		return
	}
	for _, e := range m.Bootstrap {
		if int(e.Index) != w.o.Index && e.Addr != "" {
			_ = w.ep.AddPeer(int(e.Index), e.Addr)
		}
	}
}

func (w *worker) helloMsg() *wire.Hello {
	return &wire.Hello{
		Slot:        w.curSlot.Load(),
		Index:       uint32(w.o.Index),
		Ready:       w.ready.Load(),
		Known:       uint32(w.ep.Known()),
		DataAddr:    w.ep.Addr(),
		MetricsAddr: w.metricsAddr,
	}
}

// init expands the WorkerConfig into a running protocol participant.
func (w *worker) init(m *wire.WorkerConfig) error {
	nNodes := int(m.NumNodes)
	w.total = nNodes + 1
	if w.o.Index >= w.total {
		return fmt.Errorf("swarm: worker index %d out of range (%d nodes + builder)", w.o.Index, nNodes)
	}
	g := geometryFromWire(m)
	cfg, err := g.CoreConfig()
	if err != nil {
		return fmt.Errorf("swarm: worker %d: bad geometry: %w", w.o.Index, err)
	}
	cfg.Metrics = w.reg
	w.deadline = cfg.Deadline

	w.ep.SetCellBytes(cfg.Blob.CellBytes)
	addrs := make([]string, w.total)
	addrs[w.o.Index] = w.ep.Addr()
	if err := w.ep.SetPeers(addrs); err != nil {
		return err
	}
	for _, e := range m.Bootstrap {
		if int(e.Index) != w.o.Index && e.Addr != "" {
			_ = w.ep.AddPeer(int(e.Index), e.Addr)
		}
	}

	table, err := NewTableFromSeed(cfg, m.Seed, nNodes)
	if err != nil {
		return err
	}
	proposer := DeriveProposer(m.Seed)
	w.disc = newDiscovery(w.ep, w.o.Index, w.total)

	if w.o.Index == nNodes { // builder
		builderID := DeriveBuilderID(m.Seed, nNodes)
		b := core.NewBuilder(cfg, w.o.Index, builderID, table, w.ep, m.Seed+5)
		b.SetProposerSigner(func(slot uint64) [wire.SigSize]byte {
			var sig [wire.SigSize]byte
			copy(sig[:], proposer.Sign(wire.SeedSigningBytes(slot, builderID)))
			return sig
		})
		if err := b.PrepareBlob(FillerBlob(cfg)); err != nil {
			return err
		}
		w.builder = b
	} else {
		n := core.NewNode(cfg, w.o.Index, table, w.ep, m.Seed^int64(w.o.Index*7919))
		n.SetSeedVerification(proposer.Public)
		w.node = n
	}

	w.ep.SetUnknownSender(w.disc.handleUnknown)
	w.ep.Start(func(from, size int, payload any) {
		if w.disc.handle(from, size, payload) {
			return
		}
		if w.node != nil {
			w.node.HandleMessage(from, size, payload)
		}
	})
	w.epUp.Store(true)
	fmt.Fprintf(w.log, "worker %d: data %s metrics %s (%d nodes + builder, restart %d)\n",
		w.o.Index, w.ep.Addr(), w.metricsAddr, nNodes, w.o.Restarts)
	return nil
}

func (w *worker) heartbeatLoop() {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.ctrl.heartbeat(w.helloMsg())
		}
	}
}

func (w *worker) discoveryLoop(stdout io.Writer) {
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	announced := false
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		conv := make(chan bool, 1)
		w.ep.Run(func() {
			w.disc.round()
			conv <- w.disc.converged()
		})
		select {
		case done := <-conv:
			if !done {
				announced = false
				continue
			}
			if !announced {
				announced = true // one extra announce round after convergence
				continue
			}
			if w.ready.CompareAndSwap(false, true) {
				fmt.Fprintf(stdout, "ready index=%d addr=%s peers=%d\n",
					w.o.Index, w.ep.Addr(), w.ep.Known())
				w.ctrl.heartbeat(w.helloMsg())
			}
			return
		case <-w.stop:
			return
		}
	}
}

// runSlot executes one Start command. Builders seed; nodes start the
// slot and poll for completion, then report back.
func (w *worker) runSlot(slot uint64) {
	w.curSlot.Store(slot)
	if w.builder != nil {
		w.ep.Run(func() {
			rep := w.builder.SeedSlot(slot)
			fmt.Fprintf(w.log, "worker %d: slot %d seeded %d cells in %d msgs\n",
				w.o.Index, slot, rep.Cells, rep.Messages)
			w.reg.Counter("builder_seed_cells_total").Add(int64(rep.Cells))
			w.reg.Counter("builder_seed_bytes_total").Add(rep.Bytes)
			r := &wire.Report{
				Slot:       slot,
				Index:      uint32(w.o.Index),
				Builder:    true,
				SeedCells:  uint32(rep.Cells),
				FetchMsgs:  uint32(rep.Messages),
				FetchBytes: uint64(rep.Bytes),
				Restarts:   uint32(w.o.Restarts),
			}
			r.FirstSeedUs, r.ConsolidatedUs, r.SampledUs = -1, -1, -1
			go func() { _ = w.ctrl.report(r) }()
		})
		return
	}
	w.ep.Run(func() {
		start := w.ep.Now()
		w.node.StartSlot(slot)
		w.pollSlot(slot, start)
	})
}

// pollSlot runs on the event loop every 50 ms until the slot completes
// (or far overruns the deadline), then reports the outcome.
func (w *worker) pollSlot(slot uint64, start time.Duration) {
	if w.curSlot.Load() != slot {
		return // superseded by a newer Start
	}
	m := w.node.Metrics()
	done := m.Sampled && m.Consolidated
	if !done && w.ep.Now()-start < w.deadline+2*time.Second {
		w.ep.After(50*time.Millisecond, func() { w.pollSlot(slot, start) })
		return
	}
	if done {
		w.reg.Counter("node_slots_completed_total").Inc()
		w.reg.Histogram("node_sampling_seconds", obsv.DefaultLatencyBounds).
			Observe((m.SampledAt - start).Seconds())
	} else {
		w.reg.Counter("node_slots_incomplete_total").Inc()
	}
	rel := func(at time.Duration, ok bool) int64 {
		if !ok {
			return -1
		}
		return (at - start).Microseconds()
	}
	r := &wire.Report{
		Slot:           slot,
		Index:          uint32(w.o.Index),
		HasSeed:        m.HasSeed,
		Consolidated:   m.Consolidated,
		Sampled:        m.Sampled,
		FirstSeedUs:    rel(m.FirstSeedAt, m.HasSeed),
		ConsolidatedUs: rel(m.ConsolidatedAt, m.Consolidated),
		SampledUs:      rel(m.SampledAt, m.Sampled),
		SeedCells:      uint32(m.SeedCells),
		FetchMsgs:      uint32(m.FetchMsgsSent + m.FetchMsgsRecv),
		FetchBytes:     uint64(m.FetchBytesSent + m.FetchBytesRecv),
		CorruptRejects: uint32(m.CorruptRejects),
		Restarts:       uint32(w.o.Restarts),
	}
	fmt.Fprintf(w.log, "worker %d: slot %d seed=%v cons=%v sampled=%v\n",
		w.o.Index, slot, m.HasSeed, m.Consolidated, m.Sampled)
	go func() { _ = w.ctrl.report(r) }()
}

package swarm

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pandas/internal/adversary"
	"pandas/internal/core"
	"pandas/internal/obsv"
	"pandas/internal/wire"
)

// WorkerCommand builds the (unstarted) command for worker index i. The
// supervisor appends "-swarm ADDR -index I" and the EnvRestarts
// variable before launching.
type WorkerCommand func(index int) *exec.Cmd

// Options configures a swarm run.
type Options struct {
	N     int   // protocol nodes; the builder is index N, so N+1 processes
	Slots int   // slots to drive
	Seed  int64 // deployment seed (identities, sortition)

	Geometry Geometry

	// BootstrapSize is how many already-registered workers each
	// WorkerConfig lists as bootstrap peers (default 4). Discovery must
	// spread the rest of the table from these.
	BootstrapSize int

	// KillFraction, when positive, kills that fraction of node processes
	// each slot, KillDelay after the slot starts (victims drawn by the
	// adversary package's deterministic sortition; the builder is
	// exempt). Killed workers restart and rejoin mid-slot.
	KillFraction float64
	KillDelay    time.Duration

	MaxRestarts      int           // per-worker restart budget (default 10)
	ReadyTimeout     time.Duration // discovery convergence budget (default 60s)
	SlotTimeout      time.Duration // per-slot harvest budget (default Deadline+8s)
	SlotGap          time.Duration // pause between slots (default 300ms)
	HeartbeatTimeout time.Duration // Hello silence before a worker is declared wedged and killed (default 5s; <0 disables)
	DrainTimeout     time.Duration // graceful-shutdown budget (default 5s)

	Command       WorkerCommand // required
	Log           io.Writer     // supervisor + worker diagnostics; nil discards
	ScrapeMetrics bool          // harvest workers' Prometheus endpoints into Result.Metrics
}

func (o Options) withDefaults() Options {
	if o.Slots == 0 {
		o.Slots = 1
	}
	if o.Geometry == (Geometry{}) {
		o.Geometry = DefaultGeometry()
	}
	if o.BootstrapSize == 0 {
		o.BootstrapSize = 4
	}
	if o.KillDelay == 0 {
		o.KillDelay = 500 * time.Millisecond
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 10
	}
	if o.ReadyTimeout == 0 {
		o.ReadyTimeout = 60 * time.Second
	}
	if o.SlotTimeout == 0 {
		o.SlotTimeout = o.Geometry.Deadline + 8*time.Second
	}
	if o.SlotGap == 0 {
		o.SlotGap = 300 * time.Millisecond
	}
	if o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// workerState is the supervisor's view of one worker process.
type workerState struct {
	index       int
	cmd         *exec.Cmd
	ctrlAddr    *net.UDPAddr // worker's control socket, learned from Hello
	dataAddr    string
	metricsAddr string
	ready       bool
	alive       bool
	gone        bool // restart budget exhausted
	lastSeen    time.Time
	launched    time.Time
	restarts    int
	fastCrashes int // consecutive sub-second lifetimes, drives backoff
}

// Supervisor runs a swarm: N node processes plus a builder process,
// config distribution, discovery bootstrap, slot driving, crash
// restart, fault injection, and outcome harvest.
type Supervisor struct {
	o    Options
	conn *net.UDPConn
	log  io.Writer

	nonce atomic.Uint64
	exits chan int
	done  chan struct{}
	wg    sync.WaitGroup

	mu              sync.Mutex
	workers         []*workerState
	curSlot         uint64
	slotStart       time.Time
	startNonce      []uint64
	startAcked      []bool
	restartedInSlot []bool
	rejoinedAt      []time.Duration
	leftAt          []time.Duration
	reports         map[int]*wire.Report
	builderReport   *wire.Report
	slotRestarts    int
	totalRestarts   int
	shuttingDown    bool
}

// Run executes a full swarm deployment and returns the merged result.
// On ready-phase failure it returns the partial result alongside the
// error so callers can still inspect what happened.
func Run(o Options) (*Result, error) {
	o = o.withDefaults()
	if o.Command == nil {
		return nil, fmt.Errorf("swarm: Options.Command is required")
	}
	if o.N < 2 {
		return nil, fmt.Errorf("swarm: need at least 2 nodes, got %d", o.N)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("swarm: bind control socket: %w", err)
	}
	total := o.N + 1
	s := &Supervisor{
		o:               o,
		conn:            conn,
		log:             o.Log,
		exits:           make(chan int, total),
		done:            make(chan struct{}),
		workers:         make([]*workerState, total),
		startNonce:      make([]uint64, total),
		startAcked:      make([]bool, total),
		restartedInSlot: make([]bool, total),
		rejoinedAt:      make([]time.Duration, total),
		leftAt:          make([]time.Duration, total),
		reports:         make(map[int]*wire.Report),
	}
	for i := range s.workers {
		s.workers[i] = &workerState{index: i}
	}
	s.wg.Add(2)
	go s.readLoop()
	go s.monitor()
	defer s.shutdown()

	fmt.Fprintf(s.log, "swarm: control %s, launching %d workers (%d nodes + builder)\n",
		s.Addr(), total, o.N)
	for i := 0; i < total; i++ {
		s.launch(i)
	}

	res := &Result{
		N:            o.N,
		Slots:        o.Slots,
		Seed:         o.Seed,
		Geometry:     o.Geometry,
		KillFraction: o.KillFraction,
	}
	if err := s.waitReady(); err != nil {
		return res, err
	}
	fmt.Fprintf(s.log, "swarm: all %d workers ready\n", total)

	for slot := uint64(1); slot <= uint64(o.Slots); slot++ {
		res.SlotResults = append(res.SlotResults, s.runSlot(slot))
		if slot < uint64(o.Slots) {
			time.Sleep(o.SlotGap)
		}
	}
	if o.ScrapeMetrics {
		res.Metrics = s.scrape()
	}
	s.shutdown()
	s.mu.Lock()
	res.TotalRestarts = s.totalRestarts
	s.mu.Unlock()
	return res, nil
}

// Addr returns the supervisor's control address.
func (s *Supervisor) Addr() string { return s.conn.LocalAddr().String() }

// launch starts (or restarts) worker idx's process.
func (s *Supervisor) launch(idx int) {
	s.mu.Lock()
	w := s.workers[idx]
	if s.shuttingDown || w.gone || w.alive {
		s.mu.Unlock()
		return
	}
	cmd := s.o.Command(idx)
	cmd.Args = append(cmd.Args, "-swarm", s.Addr(), "-index", strconv.Itoa(idx))
	if cmd.Env == nil {
		cmd.Env = os.Environ()
	}
	cmd.Env = append(cmd.Env, EnvRestarts+"="+strconv.Itoa(w.restarts))
	if cmd.Stdout == nil {
		cmd.Stdout = s.log
	}
	if cmd.Stderr == nil {
		cmd.Stderr = s.log
	}
	if err := cmd.Start(); err != nil {
		w.gone = true
		s.mu.Unlock()
		fmt.Fprintf(s.log, "swarm: worker %d failed to start: %v\n", idx, err)
		return
	}
	w.cmd = cmd
	w.alive = true
	w.ready = false
	w.launched = time.Now()
	w.lastSeen = time.Now() // grace until the first Hello
	s.mu.Unlock()
	go func() {
		_ = cmd.Wait()
		select {
		case s.exits <- idx:
		case <-s.done:
		}
	}()
}

// readLoop serves the control protocol: Hello→WorkerConfig, Report→Ack,
// and Start-Ack bookkeeping.
func (s *Supervisor) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		msg, err := wire.Decode(buf[:n], 0)
		if err != nil {
			continue
		}
		switch m := msg.(type) {
		case *wire.Hello:
			s.handleHello(m, raddr)
		case *wire.Report:
			s.sendTo(raddr, &wire.Ack{Nonce: m.Nonce})
			s.handleReport(m)
		case *wire.Ack:
			s.handleAck(m)
		}
	}
}

func (s *Supervisor) handleHello(m *wire.Hello, raddr *net.UDPAddr) {
	idx := int(m.Index)
	if idx < 0 || idx >= len(s.workers) {
		return
	}
	s.mu.Lock()
	w := s.workers[idx]
	w.ctrlAddr = raddr
	w.dataAddr = m.DataAddr
	w.metricsAddr = m.MetricsAddr
	w.ready = m.Ready
	w.lastSeen = time.Now()
	reply := &wire.WorkerConfig{
		Nonce:     m.Nonce,
		NumNodes:  uint32(s.o.N),
		Seed:      s.o.Seed,
		Bootstrap: s.bootstrapLocked(idx),
	}
	s.o.Geometry.toWire(reply)
	s.mu.Unlock()
	s.sendTo(raddr, reply)
}

// bootstrapLocked picks up to BootstrapSize registered workers (lowest
// indexes first, excluding the asker) as discovery entry points.
func (s *Supervisor) bootstrapLocked(asker int) []wire.PeerEntry {
	var out []wire.PeerEntry
	for _, w := range s.workers {
		if w.index == asker || w.dataAddr == "" || !w.alive {
			continue
		}
		out = append(out, wire.PeerEntry{Index: uint32(w.index), Addr: w.dataAddr})
		if len(out) == s.o.BootstrapSize {
			break
		}
	}
	return out
}

func (s *Supervisor) handleReport(m *wire.Report) {
	idx := int(m.Index)
	if idx < 0 || idx >= len(s.workers) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Slot != s.curSlot {
		return // stale report from a previous slot's straggler
	}
	if m.Builder {
		s.builderReport = m
		return
	}
	// Keep the better report: a restarted worker may first time out
	// incomplete, then its successor completes the slot after rejoining.
	if prev, ok := s.reports[idx]; !ok || (!prev.Sampled && m.Sampled) {
		s.reports[idx] = m
	}
}

func (s *Supervisor) handleAck(m *wire.Ack) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, nonce := range s.startNonce {
		if nonce != 0 && nonce == m.Nonce && !s.startAcked[i] {
			s.startAcked[i] = true
			if s.restartedInSlot[i] && s.rejoinedAt[i] < 0 {
				s.rejoinedAt[i] = time.Since(s.slotStart)
				fmt.Fprintf(s.log, "swarm: worker %d rejoined slot %d at +%v\n",
					i, s.curSlot, s.rejoinedAt[i].Round(time.Millisecond))
			}
		}
	}
}

func (s *Supervisor) sendTo(addr *net.UDPAddr, m wire.Message) {
	data, err := wire.Encode(m, 0)
	if err != nil {
		return
	}
	_, _ = s.conn.WriteToUDP(data, addr)
}

// monitor consumes worker exits (restarting with exponential backoff)
// and enforces heartbeat liveness.
func (s *Supervisor) monitor() {
	defer s.wg.Done()
	hb := time.NewTicker(500 * time.Millisecond)
	defer hb.Stop()
	for {
		select {
		case <-s.done:
			return
		case idx := <-s.exits:
			s.handleExit(idx)
		case <-hb.C:
			s.checkHeartbeats()
		}
	}
}

func (s *Supervisor) handleExit(idx int) {
	s.mu.Lock()
	w := s.workers[idx]
	w.alive = false
	w.ready = false
	if s.shuttingDown {
		s.mu.Unlock()
		return
	}
	if s.curSlot > 0 {
		s.restartedInSlot[idx] = true
		s.startAcked[idx] = false // successor must re-ack the Start
		if s.leftAt[idx] < 0 {
			s.leftAt[idx] = time.Since(s.slotStart)
		}
	}
	if w.restarts >= s.o.MaxRestarts {
		w.gone = true
		s.mu.Unlock()
		fmt.Fprintf(s.log, "swarm: worker %d exhausted %d restarts, giving up\n", idx, s.o.MaxRestarts)
		return
	}
	w.restarts++
	s.totalRestarts++
	s.slotRestarts++
	if time.Since(w.launched) < time.Second {
		w.fastCrashes++
	} else {
		w.fastCrashes = 0
	}
	streak := w.fastCrashes
	if streak > 5 {
		streak = 5
	}
	backoff := 200 * time.Millisecond << streak
	restarts := w.restarts
	s.mu.Unlock()
	fmt.Fprintf(s.log, "swarm: worker %d exited, restart %d in %v\n", idx, restarts, backoff)
	time.AfterFunc(backoff, func() { s.launch(idx) })
}

// checkHeartbeats kills workers whose Hellos stopped: a wedged process
// (live but unresponsive) is indistinguishable from a crash to the rest
// of the swarm, so it is treated as one.
func (s *Supervisor) checkHeartbeats() {
	if s.o.HeartbeatTimeout <= 0 {
		return
	}
	var stale []*os.Process
	s.mu.Lock()
	for _, w := range s.workers {
		if w.alive && w.cmd != nil && w.cmd.Process != nil &&
			time.Since(w.lastSeen) > s.o.HeartbeatTimeout {
			fmt.Fprintf(s.log, "swarm: worker %d heartbeat lost (%v), killing\n",
				w.index, time.Since(w.lastSeen).Round(time.Millisecond))
			stale = append(stale, w.cmd.Process)
		}
	}
	s.mu.Unlock()
	for _, p := range stale {
		_ = p.Kill()
	}
}

// waitReady blocks until every worker has registered, completed
// discovery, and declared ready.
func (s *Supervisor) waitReady() error {
	deadline := time.Now().Add(s.o.ReadyTimeout)
	for time.Now().Before(deadline) {
		ready, gone := 0, 0
		s.mu.Lock()
		for _, w := range s.workers {
			if w.ready {
				ready++
			}
			if w.gone {
				gone++
			}
		}
		s.mu.Unlock()
		if gone > 0 {
			return fmt.Errorf("swarm: %d workers failed permanently during bootstrap", gone)
		}
		if ready == len(s.workers) {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	var missing []string
	s.mu.Lock()
	for _, w := range s.workers {
		if !w.ready {
			missing = append(missing, strconv.Itoa(w.index))
		}
	}
	s.mu.Unlock()
	return fmt.Errorf("swarm: ready timeout; workers not ready: %s", strings.Join(missing, " "))
}

// runSlot drives one slot: Start to every node (retried until acked),
// then to the builder, optional kill injection, then harvest.
func (s *Supervisor) runSlot(slot uint64) SlotResult {
	s.mu.Lock()
	s.curSlot = slot
	s.slotStart = time.Now()
	s.reports = make(map[int]*wire.Report)
	s.builderReport = nil
	s.slotRestarts = 0
	for i := range s.startNonce {
		s.startNonce[i] = s.nonce.Add(1)
		s.startAcked[i] = false
		s.restartedInSlot[i] = false
		s.rejoinedAt[i] = -1
		s.leftAt[i] = -1
	}
	s.mu.Unlock()

	stop := make(chan struct{})
	defer close(stop)
	builderIdx := s.o.N
	for i := 0; i < builderIdx; i++ {
		go s.driveStart(slot, i, stop)
	}
	// Give node Starts a moment to land so custodians are in the slot
	// before seeding begins, then release the builder.
	s.waitAcked(builderIdx, 2*time.Second)
	go s.driveStart(slot, builderIdx, stop)

	var killTimer *time.Timer
	if s.o.KillFraction > 0 {
		killTimer = time.AfterFunc(s.o.KillDelay, func() { s.injectKills(slot) })
		defer killTimer.Stop()
	}

	deadline := time.Now().Add(s.o.SlotTimeout)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		got := len(s.reports)
		want := 0
		for _, w := range s.workers[:builderIdx] {
			if !w.gone {
				want++
			}
		}
		s.mu.Unlock()
		if got >= want {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return s.finalizeSlot(slot)
}

// driveStart retries the Start command for one worker until it is
// acked and the worker has not been restarted since — a successor
// process clears the ack and gets the Start again, which is how killed
// workers rejoin the slot in flight.
func (s *Supervisor) driveStart(slot uint64, idx int, stop chan struct{}) {
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		s.mu.Lock()
		acked := s.startAcked[idx]
		nonce := s.startNonce[idx]
		w := s.workers[idx]
		addr, gone := w.ctrlAddr, w.gone
		s.mu.Unlock()
		if gone {
			return
		}
		if !acked && addr != nil {
			s.sendTo(addr, &wire.Start{Slot: slot, Nonce: nonce})
		}
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// waitAcked waits until every live worker below limit acked its Start.
func (s *Supervisor) waitAcked(limit int, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		ok := true
		s.mu.Lock()
		for i := 0; i < limit; i++ {
			if !s.startAcked[i] && !s.workers[i].gone {
				ok = false
				break
			}
		}
		s.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// injectKills kills this slot's sortition-selected victims. Process
// kill is the adversary model at process granularity: the victim
// vanishes mid-slot (Silent, terminally) and its restarted successor
// must rejoin and catch up.
func (s *Supervisor) injectKills(slot uint64) {
	cfg := &adversary.Config{SilentFraction: s.o.KillFraction}
	behaviors := cfg.Sortition(s.o.Seed+int64(slot)*7919, s.o.N)
	var victims []*os.Process
	s.mu.Lock()
	for i, b := range behaviors {
		if b != adversary.Silent {
			continue
		}
		w := s.workers[i]
		if w.alive && w.cmd != nil && w.cmd.Process != nil {
			fmt.Fprintf(s.log, "swarm: slot %d fault injection: killing worker %d\n", slot, i)
			victims = append(victims, w.cmd.Process)
		}
	}
	s.mu.Unlock()
	for _, p := range victims {
		_ = p.Kill()
	}
}

// finalizeSlot folds the harvested reports into the simnet's outcome
// schema, so swarm results line up with EXPERIMENTS.md tables.
func (s *Supervisor) finalizeSlot(slot uint64) SlotResult {
	dur := func(us int64) time.Duration {
		return time.Duration(us) * time.Microsecond
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := SlotResult{Slot: slot, Restarts: s.slotRestarts}
	sr.Outcomes = make([]core.NodeOutcome, s.o.N)
	for i := range sr.Outcomes {
		oc := core.NodeOutcome{
			Seed: -1, Consolidation: -1, Sampling: -1,
			BlockRecv: -1, ConsFromSeed: -1, JoinedAt: -1, LeftAt: -1,
		}
		if r := s.reports[i]; r != nil {
			sr.Reports++
			if r.HasSeed {
				oc.Seed = dur(r.FirstSeedUs)
			}
			if r.Consolidated {
				oc.Consolidation = dur(r.ConsolidatedUs)
				if r.HasSeed {
					oc.ConsFromSeed = oc.Consolidation - oc.Seed
				}
			}
			if r.Sampled {
				oc.Sampling = dur(r.SampledUs)
			}
			oc.FetchMsgs = int(r.FetchMsgs)
			oc.FetchBytes = int64(r.FetchBytes)
		} else if s.workers[i].gone {
			oc.Dead = true
		}
		if s.rejoinedAt[i] >= 0 {
			oc.JoinedAt = s.rejoinedAt[i]
			sr.Rejoined++
		}
		if s.leftAt[i] >= 0 {
			oc.LeftAt = s.leftAt[i]
		}
		sr.Outcomes[i] = oc
	}
	if s.builderReport != nil {
		sr.BuilderCells = int(s.builderReport.SeedCells)
		sr.BuilderBytes = int64(s.builderReport.FetchBytes)
	}
	fmt.Fprintf(s.log, "swarm: slot %d harvested %d/%d reports (%d restarts, %d rejoined)\n",
		slot, sr.Reports, s.o.N, sr.Restarts, sr.Rejoined)
	return sr
}

// scrape merges every live worker's Prometheus endpoint into one
// snapshot. Failures are logged and skipped: observability must not
// fail the run.
func (s *Supervisor) scrape() obsv.Snapshot {
	s.mu.Lock()
	addrs := make([]string, 0, len(s.workers))
	for _, w := range s.workers {
		if w.metricsAddr != "" && w.alive {
			addrs = append(addrs, w.metricsAddr)
		}
	}
	s.mu.Unlock()
	client := &http.Client{Timeout: 2 * time.Second}
	merged := obsv.Snapshot{}
	for _, addr := range addrs {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			fmt.Fprintf(s.log, "swarm: scrape %s: %v\n", addr, err)
			continue
		}
		snap, err := obsv.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(s.log, "swarm: parse %s: %v\n", addr, err)
			continue
		}
		merged = merged.Merge(snap)
	}
	return merged
}

// shutdown drains the swarm: SIGTERM to every worker, a grace period,
// SIGKILL for stragglers, then control-plane teardown. Idempotent.
func (s *Supervisor) shutdown() {
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		return
	}
	s.shuttingDown = true
	var procs []*os.Process
	for _, w := range s.workers {
		if w.alive && w.cmd != nil && w.cmd.Process != nil {
			procs = append(procs, w.cmd.Process)
		}
	}
	s.mu.Unlock()
	for _, p := range procs {
		_ = p.Signal(syscall.SIGTERM)
	}
	deadline := time.Now().Add(s.o.DrainTimeout)
	for time.Now().Before(deadline) {
		alive := 0
		s.mu.Lock()
		for _, w := range s.workers {
			if w.alive {
				alive++
			}
		}
		s.mu.Unlock()
		if alive == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	s.mu.Lock()
	for _, w := range s.workers {
		if w.alive && w.cmd != nil && w.cmd.Process != nil {
			fmt.Fprintf(s.log, "swarm: worker %d did not drain, killing\n", w.index)
			_ = w.cmd.Process.Kill()
		}
	}
	s.mu.Unlock()
	close(s.done)
	_ = s.conn.Close()
	s.wg.Wait()
}

// Package swarm is the multi-process deployment runtime: a supervisor
// that launches N pandas-node worker processes on localhost, distributes
// per-node configuration over a UDP control protocol, lets the workers
// discover each other's sockets discv5-style from a small bootstrap set,
// then drives slots end-to-end over real UDP — builder seeding,
// custody consolidation, and sampling all travel through the kernel's
// network stack instead of the in-process simnet.
//
// The supervisor owns robustness and observability:
//
//   - crash detection via process exit plus Hello-heartbeat timeouts,
//     with exponential-backoff restart;
//   - kill/restart fault injection on a per-slot schedule (victims drawn
//     by the adversary package's deterministic sortition, applied at
//     process granularity);
//   - per-slot outcome harvest over the same UDP control channel,
//     merged into the simnet's core.NodeOutcome schema so swarm and
//     simulation results land in one table;
//   - optional scraping of each worker's obsv metrics endpoint.
//
// The wire formats live in internal/wire (Hello/WorkerConfig/Start/
// Report/Ack for the control plane, FindPeers/Peers for discovery); the
// dynamic peer table lives in internal/transport.
package swarm

import (
	"time"

	"pandas/internal/assign"
	"pandas/internal/blob"
	"pandas/internal/core"
	"pandas/internal/ids"
	"pandas/internal/wire"
)

// EnvRestarts is the environment variable the supervisor sets on
// relaunched workers: how many times this index has been restarted.
const EnvRestarts = "PANDAS_SWARM_RESTARTS"

// Geometry is the slot geometry the supervisor distributes to workers.
// It is the swarm-sized analogue of core.Config: small enough that a
// fleet of real processes completes slots well inside the deadline.
type Geometry struct {
	K          int // base matrix size (extended is 2K x 2K)
	Custody    int // rows and columns per node
	Samples    int
	CellBytes  int
	Redundancy int
	SeedWait   time.Duration
	Deadline   time.Duration
}

// DefaultGeometry returns the swarm default: a 16x16 extended matrix
// with 4+4 custody lines — the localnet test geometry, dense enough
// that every line has multiple holders at a few dozen nodes.
func DefaultGeometry() Geometry {
	return Geometry{
		K:          8,
		Custody:    4,
		Samples:    6,
		CellBytes:  64,
		Redundancy: 4,
		SeedWait:   400 * time.Millisecond,
		Deadline:   4 * time.Second,
	}
}

// CoreConfig expands the geometry into a validated core.Config with
// real payloads.
func (g Geometry) CoreConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Blob = blob.Params{K: g.K, CellBytes: g.CellBytes, ProofBytes: 48}
	cfg.Assign = assign.Params{Rows: g.Custody, Cols: g.Custody, N: cfg.Blob.N()}
	cfg.Samples = g.Samples
	cfg.Redundancy = g.Redundancy
	if g.SeedWait > 0 {
		cfg.SeedWait = g.SeedWait
	}
	if g.Deadline > 0 {
		cfg.Deadline = g.Deadline
	}
	cfg.RealPayloads = true
	return cfg, cfg.Validate()
}

// toWire packs the geometry into the WorkerConfig control message.
func (g Geometry) toWire(m *wire.WorkerConfig) {
	m.K = uint16(g.K)
	m.Custody = uint16(g.Custody)
	m.Samples = uint16(g.Samples)
	m.CellBytes = uint16(g.CellBytes)
	m.Redundancy = uint16(g.Redundancy)
	m.SeedWaitMs = uint32(g.SeedWait / time.Millisecond)
	m.DeadlineMs = uint32(g.Deadline / time.Millisecond)
}

// geometryFromWire unpacks a WorkerConfig into a Geometry.
func geometryFromWire(m *wire.WorkerConfig) Geometry {
	return Geometry{
		K:          int(m.K),
		Custody:    int(m.Custody),
		Samples:    int(m.Samples),
		CellBytes:  int(m.CellBytes),
		Redundancy: int(m.Redundancy),
		SeedWait:   time.Duration(m.SeedWaitMs) * time.Millisecond,
		Deadline:   time.Duration(m.DeadlineMs) * time.Millisecond,
	}
}

// Deterministic shared identities: every worker derives the same table
// from the deployment seed, mirroring an ENR crawl that has converged
// (and matching cmd/pandas-node's static-peers mode, so a swarm node and
// a hand-launched node agree on who is who).

// DeriveNodeIDs returns the n participant identities for a seed.
func DeriveNodeIDs(seed int64, n int) []ids.NodeID {
	out := make([]ids.NodeID, n)
	for i := range out {
		out[i] = ids.NewTestIdentity(seed<<16 + int64(i)).ID
	}
	return out
}

// DeriveProposer returns the deployment's proposer identity.
func DeriveProposer(seed int64) *ids.Identity {
	return ids.NewTestIdentity(seed<<16 + 999)
}

// DeriveBuilderID returns the builder's identity for an n-node swarm.
func DeriveBuilderID(seed int64, n int) ids.NodeID {
	return ids.NewTestIdentity(seed<<16 + int64(n) + 3).ID
}

// NewTableFromSeed derives the shared assignment table for an n-node
// deployment.
func NewTableFromSeed(cfg core.Config, seed int64, n int) (*core.Table, error) {
	var epochSeed assign.Seed
	epochSeed[0] = byte(seed)
	epochSeed[1] = byte(seed >> 8)
	return core.NewTable(cfg.Assign, epochSeed, DeriveNodeIDs(seed, n))
}

// FillerBlob returns the deterministic layer-2 filler data builders
// seed (the same pattern cmd/pandas-node uses).
func FillerBlob(cfg core.Config) []byte {
	data := make([]byte, cfg.Blob.BlobBytes())
	for i := range data {
		data[i] = byte(i*131 + 7)
	}
	return data
}

package swarm

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"testing"
	"time"

	"pandas/internal/wire"
)

// envWorker re-executes the test binary as a swarm worker: the
// supervisor tests spawn REAL child processes without needing a
// prebuilt pandas-node (the standard helper-process pattern).
const envWorker = "PANDAS_SWARM_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(envWorker) == "1" {
		fs := flag.NewFlagSet("swarm-test-worker", flag.ExitOnError)
		sup := fs.String("swarm", "", "supervisor address")
		index := fs.Int("index", -1, "worker index")
		_ = fs.Parse(os.Args[1:])
		err := RunWorker(WorkerOptions{
			Supervisor: *sup,
			Index:      *index,
			Restarts:   RestartsFromEnv(),
			Log:        os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "swarm-test-worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testGeometry is dense enough for a handful of processes: an 8x8
// extended matrix with 4+4 custody lines means every line has ~N/2
// holders even at N=6, so sampling never starves for peers (the default
// geometry wants a few dozen nodes for that).
func testGeometry() Geometry {
	return Geometry{
		K:          4,
		Custody:    4,
		Samples:    4,
		CellBytes:  64,
		Redundancy: 4,
		SeedWait:   300 * time.Millisecond,
		Deadline:   4 * time.Second,
	}
}

// selfCommand launches this test binary in worker mode.
func selfCommand(t *testing.T) WorkerCommand {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(index int) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), envWorker+"=1")
		return cmd
	}
}

// testLog routes supervisor/worker diagnostics to stderr only under
// -v, keeping quiet CI runs quiet.
func testLog() io.Writer {
	if testing.Verbose() {
		return os.Stderr
	}
	return io.Discard
}

// TestSwarmEndToEnd is the tentpole's acceptance path in miniature: 6
// node processes plus a builder process bootstrap from 3 peers,
// discover the full table over UDP, then complete two real slots —
// seeding, consolidation, and sampling all across process boundaries.
func TestSwarmEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	res, err := Run(Options{
		N:             6,
		Slots:         2,
		Seed:          77,
		Geometry:      testGeometry(),
		BootstrapSize: 3,
		Command:       selfCommand(t),
		Log:           testLog(),
		ScrapeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlotResults) != 2 {
		t.Fatalf("got %d slot results", len(res.SlotResults))
	}
	for _, sr := range res.SlotResults {
		if sr.Reports < res.N {
			t.Errorf("slot %d: only %d/%d nodes reported", sr.Slot, sr.Reports, res.N)
		}
		if sr.BuilderCells == 0 {
			t.Errorf("slot %d: builder reported no seeded cells", sr.Slot)
		}
		sampled := 0
		for _, oc := range sr.Outcomes {
			if oc.Sampling >= 0 {
				sampled++
			}
		}
		if sampled < res.N-1 {
			t.Errorf("slot %d: only %d/%d nodes sampled", sr.Slot, sampled, res.N)
		}
		met, eligible := sr.DeadlineMet(res.Geometry.Deadline)
		if eligible == 0 || met < eligible-1 {
			t.Errorf("slot %d: deadline met %d/%d", sr.Slot, met, eligible)
		}
	}
	if res.TotalRestarts != 0 {
		t.Errorf("unexpected restarts: %d", res.TotalRestarts)
	}
	// The scrape must have harvested real per-worker metrics.
	if res.Metrics.Counters["node_slots_completed_total"] == 0 {
		t.Errorf("merged metrics missing completions: %+v", res.Metrics.Counters)
	}
	t.Logf("\n%s", res.Render())
}

// TestSwarmKillRestart injects process kills mid-slot and checks the
// supervisor restarts the victims, they rejoin the live deployment,
// and by the final slot the whole swarm reports again.
func TestSwarmKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	res, err := Run(Options{
		N:            6,
		Slots:        3,
		Seed:         99,
		Geometry:     testGeometry(),
		KillFraction: 0.34, // 2 of 6 nodes per slot
		KillDelay:    50 * time.Millisecond,
		Command:      selfCommand(t),
		Log:          testLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRestarts < 2 {
		t.Fatalf("expected kill injection to force restarts, got %d", res.TotalRestarts)
	}
	// Every slot after the first must see previously-killed workers back
	// in action: the last slot's report count is the recovery check.
	last := res.SlotResults[len(res.SlotResults)-1]
	if last.Reports < res.N-1 {
		t.Errorf("final slot: only %d/%d nodes reported after restarts", last.Reports, res.N)
	}
	sampled := 0
	for _, oc := range last.Outcomes {
		if oc.Sampling >= 0 {
			sampled++
		}
	}
	if sampled < res.N-2 {
		t.Errorf("final slot: only %d/%d nodes sampled after restarts", sampled, res.N)
	}
	rejoins := 0
	for _, sr := range res.SlotResults {
		rejoins += sr.Rejoined
	}
	t.Logf("restarts=%d rejoins=%d\n%s", res.TotalRestarts, rejoins, res.Render())
}

func TestGeometryWireRoundTrip(t *testing.T) {
	g := Geometry{K: 16, Custody: 2, Samples: 73, CellBytes: 512, Redundancy: 6,
		SeedWait: 250 * time.Millisecond, Deadline: 7 * time.Second}
	var m wire.WorkerConfig
	g.toWire(&m)
	if got := geometryFromWire(&m); got != g {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, g)
	}
}

func TestDeriveIdentitiesMatchAcrossCalls(t *testing.T) {
	a := DeriveNodeIDs(42, 8)
	b := DeriveNodeIDs(42, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d identity unstable", i)
		}
	}
	if DeriveBuilderID(42, 8) == a[0] {
		t.Fatal("builder identity collides with node 0")
	}
	g := DefaultGeometry()
	cfg, err := g.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTableFromSeed(cfg, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumNodes() != 8 {
		t.Fatalf("table size %d", tbl.NumNodes())
	}
}

func TestRenderEmptyAndPercentile(t *testing.T) {
	r := &Result{N: 4, Slots: 1, Geometry: DefaultGeometry()}
	r.SlotResults = []SlotResult{{Slot: 1}}
	if out := r.Render(); out == "" {
		t.Fatal("empty render")
	}
	if got := percentile(nil, 0.5); got != -1 {
		t.Fatalf("empty percentile = %v", got)
	}
	ds := []time.Duration{3, 1, 2}
	if got := percentile(ds, 0.5); got != 2 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(ds, 0.99); got != 3 {
		t.Fatalf("p99 = %v", got)
	}
}

package swarm

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

// NodeBinaryCommand returns a WorkerCommand that launches the
// pandas-node binary at bin in swarm worker mode. The supervisor
// appends the -swarm/-index flags itself.
func NodeBinaryCommand(bin string) WorkerCommand {
	return func(index int) *exec.Cmd {
		return exec.Command(bin)
	}
}

// BuildNodeBinary compiles cmd/pandas-node into dir and returns the
// binary path. Used by pandas-swarm and the swarm experiment when no
// prebuilt binary is supplied; requires running inside the module tree.
func BuildNodeBinary(dir string) (string, error) {
	root, err := moduleRoot()
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "pandas-node")
	cmd := exec.Command("go", "build", "-o", bin, "pandas/cmd/pandas-node")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("swarm: build pandas-node: %v\n%s", err, out)
	}
	return bin, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("swarm: go.mod not found above %s (pass an explicit worker binary)", dir)
		}
		dir = parent
	}
}

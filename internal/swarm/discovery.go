package swarm

import (
	"net"

	"pandas/internal/transport"
	"pandas/internal/wire"
)

// discovery is the worker's peer-discovery plane: a discv5-style
// iterative crawl over the data-plane socket. Each round the worker
// sends FindPeers — announcing its own (index, addr) — to every peer it
// knows; receivers register the sender and reply with their full table,
// so knowledge floods outward from the bootstrap set until everyone
// knows everyone. A restarted worker re-enters the same way: its
// first-hand FindPeers announcements rebind its index to the fresh
// socket in every receiver's table.
//
// All methods run on the endpoint's event loop (handle/handleUnknown
// are called from the transport's dispatcher; round is scheduled with
// ep.Run), so no locking is needed beyond the transport's own.
type discovery struct {
	ep    *transport.UDP
	self  int
	total int // table size when complete (nodes + builder)
	nonce uint64
}

func newDiscovery(ep *transport.UDP, self, total int) *discovery {
	return &discovery{ep: ep, self: self, total: total}
}

// converged reports whether the full table is known.
func (d *discovery) converged() bool { return d.ep.Known() >= d.total }

// round sends a FindPeers announcement to every known peer. Called
// periodically until convergence, plus one final round after, so peers
// that learned of us second-hand get our first-hand binding too.
func (d *discovery) round() {
	d.nonce++
	fp := &wire.FindPeers{Nonce: d.nonce, Index: uint32(d.self), Addr: d.ep.Addr()}
	for i, addr := range d.ep.Peers() {
		if i == d.self || addr == "" {
			continue
		}
		d.ep.Send(i, fp.WireSize(0), fp)
	}
}

// handle processes discovery messages from senders already in the peer
// table. Returns false for non-discovery payloads so the caller can
// route them to the protocol handler.
func (d *discovery) handle(from, size int, payload any) bool {
	switch m := payload.(type) {
	case *wire.FindPeers:
		d.serve(m, nil)
	case *wire.Peers:
		d.merge(m.Entries)
	default:
		return false
	}
	return true
}

// handleUnknown processes discovery traffic from senders not yet in the
// peer table (a late joiner or restarted worker whose binding we lack).
// Installed as the transport's unknown-sender handler.
func (d *discovery) handleUnknown(raddr *net.UDPAddr, size int, payload any) {
	if m, ok := payload.(*wire.FindPeers); ok {
		d.serve(m, raddr)
	}
}

// serve answers a FindPeers: register the sender's first-hand binding
// (authoritative — it overwrites any stale address for that index, which
// is how restarted workers rebind everywhere), then reply with our
// table. raddr, when non-nil, is the observed source address used for
// the reply if the announced one fails to register.
func (d *discovery) serve(m *wire.FindPeers, raddr *net.UDPAddr) {
	idx := int(m.Index)
	if idx == d.self || idx < 0 || idx >= d.total || m.Addr == "" {
		return
	}
	if err := d.ep.AddPeer(idx, m.Addr); err != nil {
		return
	}
	reply := &wire.Peers{Nonce: m.Nonce}
	flush := func() {
		if len(reply.Entries) == 0 {
			return
		}
		if raddr != nil {
			d.ep.SendToAddr(raddr, reply)
		} else {
			d.ep.Send(idx, reply.WireSize(0), reply)
		}
		reply = &wire.Peers{Nonce: m.Nonce}
	}
	for i, addr := range d.ep.Peers() {
		if addr == "" || i == idx {
			continue
		}
		reply.Entries = append(reply.Entries, wire.PeerEntry{Index: uint32(i), Addr: addr})
		if len(reply.Entries) == wire.MaxPeersPerMessage {
			flush()
		}
	}
	flush()
}

// merge folds a Peers reply into the table. Gossip is second-hand, so it
// only fills slots we know nothing about: a stale gossiped address must
// never clobber a fresh first-hand binding from the peer itself.
func (d *discovery) merge(entries []wire.PeerEntry) {
	known := d.ep.Peers()
	for _, e := range entries {
		idx := int(e.Index)
		if idx == d.self || idx < 0 || idx >= d.total || e.Addr == "" {
			continue
		}
		if idx < len(known) && known[idx] != "" {
			continue
		}
		_ = d.ep.AddPeer(idx, e.Addr)
	}
}

// Package consensus models the slice of Ethereum proof-of-stake consensus
// that PANDAS integrates with: slot/epoch timekeeping, RANDAO-style epoch
// seeds, proposer and committee sortition, and the tight fork-choice
// attestation rule.
//
// PANDAS deliberately does NOT modify consensus; this package therefore
// only provides the timing scaffolding the protocol hangs off: a new block
// every 12 s, a 4 s verification phase, and epoch seeds (known one epoch
// in advance) that drive the cell-to-node assignment of package assign.
package consensus

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"time"

	"pandas/internal/assign"
)

// Timing constants from the Ethereum specification.
const (
	// SlotDuration is the wall-clock length of one consensus slot.
	SlotDuration = 12 * time.Second
	// PhaseDuration is one third of a slot: the block proposal /
	// attestation / aggregation phases. DAS must complete within the
	// first phase.
	PhaseDuration = SlotDuration / 3
	// SlotsPerEpoch is the number of slots per epoch.
	SlotsPerEpoch = 32
	// RetentionEpochs is how long nodes custody blob data (EIP-4844's
	// 4096 epochs, ~18 days).
	RetentionEpochs = 4096
)

// ErrBeforeGenesis is returned for times preceding the genesis.
var ErrBeforeGenesis = errors.New("consensus: time before genesis")

// Slot numbers slots from zero at genesis.
type Slot uint64

// Epoch numbers epochs from zero at genesis.
type Epoch uint64

// EpochOf returns the epoch containing the slot.
func (s Slot) EpochOf() Epoch { return Epoch(uint64(s) / SlotsPerEpoch) }

// Clock converts between wall-clock time and slots.
type Clock struct {
	genesis time.Time
}

// NewClock creates a clock with the given genesis time.
func NewClock(genesis time.Time) *Clock { return &Clock{genesis: genesis} }

// SlotAt returns the slot containing t.
func (c *Clock) SlotAt(t time.Time) (Slot, error) {
	if t.Before(c.genesis) {
		return 0, ErrBeforeGenesis
	}
	return Slot(t.Sub(c.genesis) / SlotDuration), nil
}

// StartOf returns the wall-clock start of the slot.
func (c *Clock) StartOf(s Slot) time.Time {
	return c.genesis.Add(time.Duration(s) * SlotDuration)
}

// AttestationDeadline returns the moment by which block verification and
// DAS must complete for committee members of the slot: 4 s in.
func (c *Clock) AttestationDeadline(s Slot) time.Time {
	return c.StartOf(s).Add(PhaseDuration)
}

// Randao produces epoch seeds. The real RANDAO accumulates validator
// contributions; this simulation chains a hash over the epoch number and
// an initial entropy value, preserving the properties PANDAS relies on:
// per-epoch unpredictability (before the epoch) and global agreement.
type Randao struct {
	entropy [32]byte
}

// NewRandao creates a seed source from initial entropy.
func NewRandao(entropy [32]byte) *Randao { return &Randao{entropy: entropy} }

// SeedFor returns the assignment seed for the epoch.
func (r *Randao) SeedFor(e Epoch) assign.Seed {
	h := sha256.New()
	h.Write(r.entropy[:])
	var eb [8]byte
	binary.BigEndian.PutUint64(eb[:], uint64(e))
	h.Write(eb[:])
	var s assign.Seed
	h.Sum(s[:0])
	return s
}

// ProposerIndex selects the slot's proposer among n validators via
// verifiable pseudo-random sortition seeded by the epoch seed and slot.
func ProposerIndex(seed assign.Seed, s Slot, n int) int {
	if n <= 0 {
		return -1
	}
	h := sha256.New()
	h.Write(seed[:])
	h.Write([]byte("proposer"))
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(s))
	h.Write(sb[:])
	d := h.Sum(nil)
	return int(binary.BigEndian.Uint64(d[:8]) % uint64(n))
}

// Committee selects size distinct validator indices (out of n) for the
// slot, deterministic in (seed, slot). If size >= n all indices are
// returned.
func Committee(seed assign.Seed, s Slot, n, size int) []int {
	if n <= 0 || size <= 0 {
		return nil
	}
	if size > n {
		size = n
	}
	h := sha256.New()
	h.Write(seed[:])
	h.Write([]byte("committee"))
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(s))
	h.Write(sb[:])
	d := h.Sum(nil)
	state := binary.BigEndian.Uint64(d[:8])
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	// Partial Fisher-Yates over a sparse identity permutation.
	swapped := make(map[int]int, size*2)
	out := make([]int, size)
	for i := 0; i < size; i++ {
		j := i + int(next()%uint64(n-i))
		vi, ok := swapped[j]
		if !ok {
			vi = j
		}
		vj, ok := swapped[i]
		if !ok {
			vj = i
		}
		out[i] = vi
		swapped[j] = vj
	}
	return out
}

// ForkChoiceRule selects how data availability interacts with
// attestations.
type ForkChoiceRule int

// Fork-choice rules discussed in the paper.
const (
	// TightForkChoice requires DAS to complete before attesting: a block
	// with valid transactions but unavailable blob data is attested
	// INVALID. This is the rule PANDAS targets; it needs no consensus
	// changes.
	TightForkChoice ForkChoiceRule = iota + 1
	// TrailingForkChoice defers the availability decision past the
	// attestation deadline and requires consensus changes to revert
	// blocks retroactively (vulnerable to ex-ante reorgs).
	TrailingForkChoice
)

// String implements fmt.Stringer.
func (r ForkChoiceRule) String() string {
	switch r {
	case TightForkChoice:
		return "tight"
	case TrailingForkChoice:
		return "trailing"
	default:
		return "unknown"
	}
}

// AttestationInput captures what a committee node observed during the
// slot's first phase. Zero times mean "never happened".
type AttestationInput struct {
	SlotStart     time.Time
	BlockValidAt  time.Time // block received and verified
	DASCompleteAt time.Time // 73 samples all retrieved
}

// Vote is a committee member's attestation decision.
type Vote int

// Attestation outcomes.
const (
	// VoteValid attests the block (and, under the tight rule, its data
	// availability).
	VoteValid Vote = iota + 1
	// VoteInvalid rejects the block: verification or sampling failed or
	// missed the deadline.
	VoteInvalid
)

// Attest applies the fork-choice rule to the observations. Under the
// tight rule both block verification and DAS must land within
// PhaseDuration of the slot start; under the trailing rule only block
// verification gates the vote (availability is resolved later, outside
// this model).
func Attest(rule ForkChoiceRule, in AttestationInput) Vote {
	deadline := in.SlotStart.Add(PhaseDuration)
	blockOK := !in.BlockValidAt.IsZero() && !in.BlockValidAt.After(deadline)
	if !blockOK {
		return VoteInvalid
	}
	if rule == TrailingForkChoice {
		return VoteValid
	}
	dasOK := !in.DASCompleteAt.IsZero() && !in.DASCompleteAt.After(deadline)
	if !dasOK {
		return VoteInvalid
	}
	return VoteValid
}

// SupermajorityNum / SupermajorityDen define the 2/3 threshold Ethereum
// uses for committee decisions.
const (
	SupermajorityNum = 2
	SupermajorityDen = 3
)

// Decision is the aggregate outcome of a committee's attestations.
type Decision int

// Aggregate decisions.
const (
	// DecisionAccept means a supermajority attested the block (and its
	// data availability, under the tight rule) valid.
	DecisionAccept Decision = iota + 1
	// DecisionReject means validity did not reach a supermajority: the
	// block is not finalized — exactly what happens when blob data is
	// withheld and sampling fails across the committee.
	DecisionReject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	if d == DecisionAccept {
		return "accept"
	}
	return "reject"
}

// Aggregate folds committee votes into a decision: accept iff at least
// 2/3 of the committee voted valid. Missing votes (absent members) count
// against acceptance, as in Ethereum.
func Aggregate(votes []Vote, committeeSize int) Decision {
	if committeeSize <= 0 {
		return DecisionReject
	}
	valid := 0
	for _, v := range votes {
		if v == VoteValid {
			valid++
		}
	}
	if valid*SupermajorityDen >= committeeSize*SupermajorityNum {
		return DecisionAccept
	}
	return DecisionReject
}

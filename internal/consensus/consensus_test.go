package consensus

import (
	"errors"
	"testing"
	"time"
)

var genesis = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestClockSlotAt(t *testing.T) {
	c := NewClock(genesis)
	cases := []struct {
		offset time.Duration
		want   Slot
	}{
		{0, 0},
		{11 * time.Second, 0},
		{12 * time.Second, 1},
		{25 * time.Second, 2},
		{12 * 32 * time.Second, 32},
	}
	for _, cse := range cases {
		got, err := c.SlotAt(genesis.Add(cse.offset))
		if err != nil {
			t.Fatal(err)
		}
		if got != cse.want {
			t.Errorf("SlotAt(+%v) = %d, want %d", cse.offset, got, cse.want)
		}
	}
	if _, err := c.SlotAt(genesis.Add(-time.Second)); !errors.Is(err, ErrBeforeGenesis) {
		t.Fatalf("err = %v, want ErrBeforeGenesis", err)
	}
}

func TestClockStartAndDeadline(t *testing.T) {
	c := NewClock(genesis)
	if got := c.StartOf(3); !got.Equal(genesis.Add(36 * time.Second)) {
		t.Fatalf("StartOf(3) = %v", got)
	}
	if got := c.AttestationDeadline(3); !got.Equal(genesis.Add(40 * time.Second)) {
		t.Fatalf("AttestationDeadline(3) = %v", got)
	}
}

func TestEpochOf(t *testing.T) {
	if Slot(0).EpochOf() != 0 || Slot(31).EpochOf() != 0 || Slot(32).EpochOf() != 1 || Slot(100).EpochOf() != 3 {
		t.Fatal("EpochOf wrong")
	}
}

func TestRandaoSeedsDifferPerEpoch(t *testing.T) {
	r := NewRandao([32]byte{1})
	s1 := r.SeedFor(1)
	s2 := r.SeedFor(2)
	s1b := r.SeedFor(1)
	if s1 == s2 {
		t.Fatal("consecutive epochs share a seed")
	}
	if s1 != s1b {
		t.Fatal("seed not deterministic")
	}
	r2 := NewRandao([32]byte{2})
	if r2.SeedFor(1) == s1 {
		t.Fatal("different entropy produced equal seed")
	}
}

func TestProposerIndexDeterministicAndBounded(t *testing.T) {
	r := NewRandao([32]byte{3})
	seed := r.SeedFor(0)
	for s := Slot(0); s < 50; s++ {
		p1 := ProposerIndex(seed, s, 100)
		p2 := ProposerIndex(seed, s, 100)
		if p1 != p2 {
			t.Fatal("proposer not deterministic")
		}
		if p1 < 0 || p1 >= 100 {
			t.Fatalf("proposer %d out of range", p1)
		}
	}
	if ProposerIndex(seed, 0, 0) != -1 {
		t.Fatal("empty validator set should yield -1")
	}
}

func TestProposerVariesAcrossSlots(t *testing.T) {
	r := NewRandao([32]byte{4})
	seed := r.SeedFor(0)
	seen := map[int]bool{}
	for s := Slot(0); s < 64; s++ {
		seen[ProposerIndex(seed, s, 1000)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct proposers over 64 slots", len(seen))
	}
}

func TestCommitteeDistinctAndSized(t *testing.T) {
	r := NewRandao([32]byte{5})
	seed := r.SeedFor(0)
	c := Committee(seed, 7, 100, 20)
	if len(c) != 20 {
		t.Fatalf("len = %d", len(c))
	}
	seen := map[int]bool{}
	for _, v := range c {
		if v < 0 || v >= 100 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate committee member %d", v)
		}
		seen[v] = true
	}
}

func TestCommitteeEdgeCases(t *testing.T) {
	r := NewRandao([32]byte{6})
	seed := r.SeedFor(0)
	if Committee(seed, 0, 0, 5) != nil {
		t.Fatal("empty set should be nil")
	}
	if Committee(seed, 0, 10, 0) != nil {
		t.Fatal("zero size should be nil")
	}
	all := Committee(seed, 0, 5, 10)
	if len(all) != 5 {
		t.Fatalf("oversized committee = %d members, want 5", len(all))
	}
}

func TestAttestTightRule(t *testing.T) {
	start := genesis
	ok := start.Add(3 * time.Second)
	late := start.Add(5 * time.Second)
	cases := []struct {
		name       string
		block, das time.Time
		want       Vote
	}{
		{"both on time", ok, ok, VoteValid},
		{"das late", ok, late, VoteInvalid},
		{"das never", ok, time.Time{}, VoteInvalid},
		{"block late", late, ok, VoteInvalid},
		{"block never", time.Time{}, ok, VoteInvalid},
		{"exactly at deadline", start.Add(PhaseDuration), start.Add(PhaseDuration), VoteValid},
	}
	for _, c := range cases {
		in := AttestationInput{SlotStart: start, BlockValidAt: c.block, DASCompleteAt: c.das}
		if got := Attest(TightForkChoice, in); got != c.want {
			t.Errorf("%s: Attest = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAttestTrailingRuleIgnoresDAS(t *testing.T) {
	start := genesis
	in := AttestationInput{
		SlotStart:     start,
		BlockValidAt:  start.Add(2 * time.Second),
		DASCompleteAt: time.Time{}, // never sampled
	}
	if got := Attest(TrailingForkChoice, in); got != VoteValid {
		t.Fatalf("trailing rule should not gate on DAS, got %v", got)
	}
}

func TestForkChoiceRuleString(t *testing.T) {
	if TightForkChoice.String() != "tight" || TrailingForkChoice.String() != "trailing" {
		t.Fatal("strings wrong")
	}
	if ForkChoiceRule(0).String() != "unknown" {
		t.Fatal("zero value should be unknown")
	}
}

func TestPhaseDurationIsFourSeconds(t *testing.T) {
	if PhaseDuration != 4*time.Second {
		t.Fatalf("PhaseDuration = %v", PhaseDuration)
	}
}

func TestAggregate(t *testing.T) {
	v := func(valid, invalid int) []Vote {
		out := make([]Vote, 0, valid+invalid)
		for i := 0; i < valid; i++ {
			out = append(out, VoteValid)
		}
		for i := 0; i < invalid; i++ {
			out = append(out, VoteInvalid)
		}
		return out
	}
	cases := []struct {
		votes     []Vote
		committee int
		want      Decision
	}{
		{v(67, 33), 100, DecisionAccept},
		{v(66, 34), 100, DecisionReject},
		{v(100, 0), 100, DecisionAccept},
		{v(0, 100), 100, DecisionReject},
		{v(60, 0), 100, DecisionReject}, // 40 members absent
		{v(2, 1), 3, DecisionAccept},
		{nil, 0, DecisionReject},
	}
	for i, c := range cases {
		if got := Aggregate(c.votes, c.committee); got != c.want {
			t.Errorf("case %d: Aggregate = %v, want %v", i, got, c.want)
		}
	}
	if DecisionAccept.String() != "accept" || DecisionReject.String() != "reject" {
		t.Fatal("strings wrong")
	}
}

func TestAggregateWithholdingScenario(t *testing.T) {
	// The tight fork-choice end game: if sampling fails committee-wide
	// (withheld data), every member votes invalid and the block is
	// rejected without any consensus-protocol change.
	start := genesis
	votes := make([]Vote, 64)
	for i := range votes {
		votes[i] = Attest(TightForkChoice, AttestationInput{
			SlotStart:    start,
			BlockValidAt: start.Add(2 * time.Second),
			// DAS never completed: data withheld.
		})
	}
	if got := Aggregate(votes, 64); got != DecisionReject {
		t.Fatalf("withheld blob accepted: %v", got)
	}
}

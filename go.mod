module pandas

go 1.22

#!/bin/sh
# Erasure-coding benchmark harness: runs the ECC micro- and macro-
# benchmarks and records the results as BENCH_ecc.json at the repo root,
# so codec performance is tracked alongside the code.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime   go test -benchtime value (default 1x: one measured
#               iteration per benchmark, fast enough for CI; use e.g.
#               2s locally for stable numbers).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"
OUT="BENCH_ecc.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== ECC benchmarks (benchtime=$BENCHTIME)"
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" \
	./internal/gf65536 ./internal/rs ./internal/blob | tee "$RAW"

# --- Builder pipeline --------------------------------------------------
# The slot-critical prepare path (32 MiB extend + commit + prove) is
# gated, not just tracked: PrepareBlob must hold >= 5x the pre-pipeline
# 20.17 MB/s baseline (i.e. >= 100.85 MB/s), and the steady-state prove
# loop must stay at zero allocations per row. The gated benchmarks use
# fixed iteration counts so the gate measurements are stable regardless
# of the harness benchtime argument (the prepare benchmark additionally
# warms its arenas with one unmeasured iteration).
echo "== builder pipeline (gates: PrepareBlob >= 100.85 MB/s, prove loop 0 allocs/row)"
go test -run '^$' -bench 'BenchmarkBuilderPrepareBlob' -benchmem \
	-benchtime 4x . | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkCommitterSlot' -benchmem \
	-benchtime "$BENCHTIME" ./internal/kzg | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkProveRowSteady' -benchmem \
	-benchtime 10000x ./internal/kzg | tee -a "$RAW"

# Parse `Benchmark<Name>[-procs] N ns/op [MB/s] [B/op] [allocs/op]`
# lines into a JSON object keyed by benchmark name, applying the
# builder-pipeline gates.
awk -v benchtime="$BENCHTIME" '
BEGIN { n = 0; fail = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; mbs = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "MB/s") mbs = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	line = sprintf("    \"%s\": {\"ns_per_op\": %s", name, ns)
	if (mbs != "") line = line sprintf(", \"mb_per_s\": %s", mbs)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	out[n++] = line
	if (name == "BenchmarkBuilderPrepareBlob" && mbs + 0 < 100.85) {
		printf "GATE FAIL: %s %s MB/s < 100.85 (5x pre-pipeline baseline)\n", name, mbs > "/dev/stderr"
		fail = 1
	}
	if (name == "BenchmarkProveRowSteady" && allocs + 0 > 0) {
		printf "GATE FAIL: %s %s allocs/op > 0\n", name, allocs > "/dev/stderr"
		fail = 1
	}
}
END {
	printf "{\n  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"gate\": {\"benchmark\": \"BenchmarkBuilderPrepareBlob\", \"min_mb_per_s\": 100.85, \"prove_loop_max_allocs_per_op\": 0},\n"
	# Pre-optimization seed-codec numbers (log/exp scalar kernels,
	# sequential extension), measured on the same 1-core Xeon 2.10GHz
	# before the split-table/FFT pipeline landed. Kept for comparison.
	printf "  \"pre_pr_baseline\": {\n"
	printf "    \"BenchmarkExtend32MB\": {\"ns_per_op\": 39139022293, \"mb_per_s\": 0.86, \"allocs_per_op\": 197387},\n"
	printf "    \"BenchmarkReconstructLine\": {\"ns_per_op\": 67927269, \"mb_per_s\": 3.86, \"allocs_per_op\": 1355}\n"
	printf "  },\n"
	# Pre-pipeline builder numbers (scalar tails, per-cell pooled hash
	# round-trips, monolithic prepare), same machine, before the
	# word-parallel kernel / alloc-free prover PR landed.
	printf "  \"pre_pipeline_baseline\": {\n"
	printf "    \"BenchmarkBuilderPrepareBlob\": {\"ns_per_op\": 1663644213, \"mb_per_s\": 20.17, \"allocs_per_op\": 788009},\n"
	printf "    \"BenchmarkExtend32MB\": {\"ns_per_op\": 882685390, \"mb_per_s\": 38.01, \"allocs_per_op\": 530}\n"
	printf "  },\n"
	printf "  \"benchmarks\": {\n"
	for (i = 0; i < n; i++) printf "%s%s\n", out[i], (i < n-1 ? "," : "")
	printf "  }\n}\n"
	exit fail
}' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c 'ns_per_op' "$OUT") benchmarks, builder gates passed)"

# --- Observability overhead -------------------------------------------
# The disabled-recorder path is on every protocol hot path, so it is
# gated, not just tracked: a nil-check must stay <= 2 ns/op with zero
# allocations. The enabled path is recorded for reference. A fixed
# iteration count keeps the gate measurement stable regardless of the
# harness benchtime argument.
OBSV_OUT="BENCH_obsv.json"
OBSV_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$OBSV_RAW"' EXIT

echo "== obsv benchmarks (gate: disabled Emit <= 2 ns/op, 0 allocs)"
go test -run '^$' -bench 'BenchmarkEmit|BenchmarkRingRecord' -benchmem \
	-benchtime 2000000x ./internal/obsv | tee "$OBSV_RAW"

awk '
BEGIN { fail = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	out[n++] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
	if (name == "BenchmarkEmitDisabled") {
		if (ns + 0 > 2) { printf "GATE FAIL: %s %s ns/op > 2\n", name, ns > "/dev/stderr"; fail = 1 }
		if (allocs + 0 > 0) { printf "GATE FAIL: %s %s allocs/op > 0\n", name, allocs > "/dev/stderr"; fail = 1 }
	}
}
END {
	printf "{\n  \"gate\": {\"benchmark\": \"BenchmarkEmitDisabled\", \"max_ns_per_op\": 2, \"max_allocs_per_op\": 0},\n"
	printf "  \"benchmarks\": {\n"
	for (i = 0; i < n; i++) printf "%s%s\n", out[i], (i < n-1 ? "," : "")
	printf "  }\n}\n"
	exit fail
}' "$OBSV_RAW" > "$OBSV_OUT"

echo "wrote $OBSV_OUT (disabled-recorder gate passed)"

# --- Sampling gateway --------------------------------------------------
# Gateway micro-benches (hit path, miss path, cache) plus the acceptance
# workload: 100k concurrent synthetic light clients per slot against a
# simnet cluster. Gate: the coalescer+cache must cut upstream fetches by
# >= 10x on the zipf workload (the subsystem's reason to exist).
GW_OUT="BENCH_gateway.json"
GW_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$OBSV_RAW" "$GW_RAW"' EXIT

echo "== gateway benchmarks (gate: upstream reduction >= 10x at 100k clients)"
go test -run '^$' -bench 'BenchmarkQueryCacheHit|BenchmarkQueryMissVerified|BenchmarkCacheAddGet' \
	-benchmem -benchtime "$BENCHTIME" ./internal/gateway | tee "$GW_RAW"
go test -run '^$' -bench 'BenchmarkVerifyBatch64' -benchmem \
	-benchtime "$BENCHTIME" ./internal/kzg | tee -a "$GW_RAW"
go test -run '^$' -bench 'BenchmarkGatewayLoad100k' -benchtime 1x \
	-timeout 20m ./internal/experiments | tee -a "$GW_RAW"

awk '
BEGIN { fail = 0; n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	line = ""
	for (i = 2; i < NF; i++) {
		unit = $(i+1)
		key = ""
		if (unit == "ns/op") key = "ns_per_op"
		else if (unit == "B/op") key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else if (unit == "qps") key = "qps"
		else if (unit == "p50_us") key = "p50_us"
		else if (unit == "p99_us") key = "p99_us"
		else if (unit == "hit_%") key = "hit_rate_pct"
		else if (unit == "reduction_x") key = "upstream_reduction_x"
		else if (unit == "coalesce_x") key = "coalesce_x"
		if (key == "") continue
		if (line != "") line = line ", "
		line = line sprintf("\"%s\": %s", key, $i)
		if (name == "BenchmarkGatewayLoad100k" && key == "upstream_reduction_x" && $i + 0 < 10) {
			printf "GATE FAIL: %s reduction %s < 10x\n", name, $i > "/dev/stderr"
			fail = 1
		}
	}
	if (line == "") next
	out[n++] = sprintf("    \"%s\": {%s}", name, line)
}
END {
	printf "{\n  \"gate\": {\"benchmark\": \"BenchmarkGatewayLoad100k\", \"min_upstream_reduction_x\": 10, \"clients_per_slot\": 100000},\n"
	printf "  \"benchmarks\": {\n"
	for (i = 0; i < n; i++) printf "%s%s\n", out[i], (i < n-1 ? "," : "")
	printf "  }\n}\n"
	exit fail
}' "$GW_RAW" > "$GW_OUT"

echo "wrote $GW_OUT (gateway reduction gate passed)"

# --- Simulator capacity ------------------------------------------------
# The discrete-event engine and the per-node state footprint back the
# 100k-node simulation claims, so both are gated: the pooled sharded
# heap must schedule+execute an event in <= 1000 ns with zero
# allocations on the hot path, and a full 100k-node metadata slot must
# complete with <= 512 KiB resident per node and >= 20k events/s
# end-to-end protocol throughput.
SIM_OUT="BENCH_simnet.json"
SIM_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$OBSV_RAW" "$GW_RAW" "$SIM_RAW"' EXIT

echo "== simnet benchmarks (gates: engine <= 1000 ns/event 0 allocs; 100k slot <= 524288 bytes/node, >= 20000 events/s)"
go test -run '^$' -bench 'BenchmarkEngineThroughput' -benchmem \
	-benchtime "$BENCHTIME" ./internal/simnet | tee "$SIM_RAW"
go test -run '^$' -bench 'BenchmarkSimnetScale100k' -benchtime 1x \
	-timeout 45m ./internal/experiments | tee -a "$SIM_RAW"

awk '
BEGIN { fail = 0; n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	line = ""
	for (i = 2; i < NF; i++) {
		unit = $(i+1)
		key = ""
		if (unit == "ns/op") key = "ns_per_op"
		else if (unit == "ns/event") key = "ns_per_event"
		else if (unit == "B/op") key = "bytes_per_op"
		else if (unit == "allocs/op") key = "allocs_per_op"
		else if (unit == "bytes/node") key = "bytes_per_node"
		else if (unit == "events/sec") key = "events_per_sec"
		if (key == "") continue
		if (line != "") line = line ", "
		line = line sprintf("\"%s\": %s", key, $i)
		if (name == "BenchmarkEngineThroughput") {
			if (key == "ns_per_event" && $i + 0 > 1000) {
				printf "GATE FAIL: %s %s ns/event > 1000\n", name, $i > "/dev/stderr"; fail = 1
			}
			if (key == "allocs_per_op" && $i + 0 > 0) {
				printf "GATE FAIL: %s %s allocs/op > 0\n", name, $i > "/dev/stderr"; fail = 1
			}
		}
		if (name == "BenchmarkSimnetScale100k") {
			if (key == "bytes_per_node" && $i + 0 > 524288) {
				printf "GATE FAIL: %s %s bytes/node > 524288\n", name, $i > "/dev/stderr"; fail = 1
			}
			if (key == "events_per_sec" && $i + 0 < 20000) {
				printf "GATE FAIL: %s %s events/sec < 20000\n", name, $i > "/dev/stderr"; fail = 1
			}
		}
	}
	if (line == "") next
	out[n++] = sprintf("    \"%s\": {%s}", name, line)
}
END {
	printf "{\n  \"gate\": {\"engine_max_ns_per_event\": 1000, \"engine_max_allocs_per_op\": 0, \"scale_nodes\": 100000, \"scale_max_bytes_per_node\": 524288, \"scale_min_events_per_sec\": 20000},\n"
	# Pre-compaction numbers on the same 1-core machine: the pointer
	# heap boxed every event (3 allocs/op) and a 10k-node metadata slot
	# ran at ~13.6k events/s with ~547 KB resident per node; 100k nodes
	# did not complete. Kept for comparison.
	printf "  \"pre_pr_baseline\": {\n"
	printf "    \"BenchmarkSimnetScale10k\": {\"bytes_per_node\": 546705, \"events_per_sec\": 13603}\n"
	printf "  },\n"
	printf "  \"benchmarks\": {\n"
	for (i = 0; i < n; i++) printf "%s%s\n", out[i], (i < n-1 ? "," : "")
	printf "  }\n}\n"
	exit fail
}' "$SIM_RAW" > "$SIM_OUT"

echo "wrote $SIM_OUT (simulator capacity gates passed)"
